// Command p3stat renders saved observability artifacts: telemetry JSON
// exports (cmd/netpipe -telemetry), host-execution profiles (cmd/netpipe
// -hostprof), and chrome-trace timelines (cmd/netpipe -trace), as aligned
// text tables — the offline half of the machine's RAS view.
//
//	p3stat run.json                # metrics, latency breakdown, series
//	p3stat out.hostprof.json       # host-execution (lane busy/wait/drain) table
//	p3stat -trace timeline.json    # per-track / per-handler summary
//
// Host profiles are recognized by their "kind": "host_profile" field; any
// other JSON document renders as telemetry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"portals3/internal/machine"
	"portals3/internal/telemetry"
	"portals3/internal/trace"
)

func main() {
	traceIn := flag.String("trace", "", "summarize a chrome-trace timeline instead of telemetry JSON")
	top := flag.Int("top", 16, "rows shown per table section; 0 shows everything")
	flag.Parse()

	switch {
	case *traceIn != "":
		if err := summarizeTrace(*traceIn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			if err := renderFile(path, *top); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadChrome(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	telemetry.Summarize(recs).Render(os.Stdout)
	return nil
}

// renderFile routes one artifact by its JSON kind discriminator: a
// host-execution profile renders as the lane table, anything else as a
// telemetry export.
func renderFile(path string, top int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var kind struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(b, &kind) == nil && kind.Kind == machine.HostProfileKind {
		var hp machine.HostProfile
		if err := json.Unmarshal(b, &hp); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		renderHostProfile(&hp, path, top)
		return nil
	}
	e, err := telemetry.ReadJSON(strings.NewReader(string(b)))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	render(e, path, top)
	return nil
}

// wallMs renders a nanosecond quantity in milliseconds.
func wallMs(ns int64) string { return fmt.Sprintf("%.1fms", float64(ns)/1e6) }

// pctOf renders a share of a total as a percentage, "-" when the total is
// zero.
func pctOf(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// renderHostProfile prints the host-execution table: the global
// wall-clock split, lane imbalance, memory high-water marks, and the
// per-lane busy/wait breakdown ranked by straggler windows — the lanes
// the rest of the machine most often waited for, first.
func renderHostProfile(hp *machine.HostProfile, path string, top int) {
	merged := ""
	if hp.Runs > 1 {
		merged = fmt.Sprintf(", %d runs merged", hp.Runs)
	}
	fmt.Printf("# %s  host-execution profile (shards %d%s)\n", path, hp.Shards, merged)
	fmt.Printf("  windows %d, events %d", hp.Windows, hp.Events)
	if hp.Windows > 0 {
		fmt.Printf(" (%.1f events/window)", float64(hp.Events)/float64(hp.Windows))
	}
	fmt.Println()
	fmt.Printf("  wall %s: exec %s (%s), drain %s (%s); measured run wall %s\n",
		wallMs(hp.WallNs), wallMs(hp.ExecNs), pctOf(hp.ExecNs, hp.WallNs),
		wallMs(hp.DrainNs), pctOf(hp.DrainNs, hp.WallNs), wallMs(hp.RunWallNs))
	fmt.Printf("  lane imbalance per window: mean %.1f%%, max %.1f%%\n",
		hp.MeanImbalancePct, hp.MaxImbalancePct)
	fmt.Printf("  memory high-water: heap-inuse %.1fMB, heap-alloc %.1fMB, sys %.1fMB, %d GCs (%d samples)\n",
		float64(hp.HeapInuseHigh)/(1<<20), float64(hp.HeapAllocHigh)/(1<<20),
		float64(hp.SysHigh)/(1<<20), hp.NumGC, hp.MemSamples)
	if len(hp.Lanes) == 0 {
		fmt.Println()
		return
	}
	lanes := append([]machine.HostLane(nil), hp.Lanes...)
	sort.Slice(lanes, func(i, j int) bool {
		a, b := lanes[i], lanes[j]
		if a.StragglerWindows != b.StragglerWindows {
			return a.StragglerWindows > b.StragglerWindows
		}
		if a.BusyNs != b.BusyNs {
			return a.BusyNs > b.BusyNs
		}
		return a.Lane < b.Lane
	})
	shown := lanes[:capLen(len(lanes), top)]
	fmt.Printf("\nlane breakdown (worst stragglers first):\n")
	fmt.Printf("  %6s %10s %7s %10s %12s %10s %9s\n",
		"lane", "busy", "busy%", "wait", "events", "straggler", "windows%")
	for _, l := range shown {
		fmt.Printf("  %6d %10s %7s %10s %12d %10d %9s\n",
			l.Lane, wallMs(l.BusyNs), pctOf(l.BusyNs, hp.WallNs), wallMs(l.WaitNs),
			l.Events, l.StragglerWindows, pctOf(int64(l.StragglerWindows), int64(hp.Windows)))
	}
	footer(len(shown), len(lanes), "lanes")
	fmt.Println()
}

// ps-valued metric names render in microseconds; everything else raw.
func isPs(name string) bool { return strings.HasSuffix(name, "_ps") }

// capLen is the row count a section shows under -top; top <= 0 disables
// capping. A machine-scale export carries thousands of per-node and
// per-link rows — uncapped tables would bury the summary they exist for.
func capLen(n, top int) int {
	if top <= 0 || n < top {
		return n
	}
	return top
}

// footer prints the elision line after a capped section.
func footer(shown, total int, unit string) {
	if shown < total {
		fmt.Printf("  ... %d of %d %s shown (-top=0 for all)\n", shown, total, unit)
	}
}

func render(e *telemetry.Export, path string, top int) {
	fmt.Printf("# %s  (sim time %.3f us)\n", path, float64(e.SimTimePs)/1e6)

	if bd, ok := e.Breakdown(); ok {
		fmt.Println()
		bd.Render(os.Stdout)
	}

	var hists, scalars []telemetry.ExportMetric
	for _, m := range e.Metrics {
		if m.Kind == "histogram" {
			hists = append(hists, m)
		} else {
			scalars = append(scalars, m)
		}
	}

	if len(hists) > 0 {
		fmt.Printf("\nhistograms:\n")
		fmt.Printf("  %-44s %8s %12s %12s %12s %12s %12s\n",
			"name", "count", "mean", "p50", "p99", "p999", "max")
		for _, m := range hists[:capLen(len(hists), top)] {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			mean := 0.0
			if m.Count > 0 {
				mean = float64(m.Sum) / float64(m.Count)
			}
			if isPs(m.Name) {
				fmt.Printf("  %-44s %8d %10.3fus %10.3fus %10.3fus %10.3fus %10.3fus\n",
					name, m.Count, mean/1e6, float64(m.P50)/1e6,
					float64(m.P99)/1e6, float64(m.P999)/1e6, float64(m.Max)/1e6)
			} else {
				fmt.Printf("  %-44s %8d %12.1f %12d %12d %12d %12d\n",
					name, m.Count, mean, m.P50, m.P99, m.P999, m.Max)
			}
		}
		footer(capLen(len(hists), top), len(hists), "histograms")
	}

	renderOccupancy(e, top)
	renderLinkContention(e, top)
	renderHopLatency(e)

	if len(scalars) > 0 {
		fmt.Printf("\ncounters and gauges:\n")
		for _, m := range scalars[:capLen(len(scalars), top)] {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			fmt.Printf("  %-60s %14g\n", name, m.Value)
		}
		footer(capLen(len(scalars), top), len(scalars), "counters")
	}

	if len(e.Series) > 0 {
		fmt.Printf("\nsampler series:\n")
		fmt.Printf("  %-44s %8s %14s %14s\n", "name", "samples", "first", "last")
		for _, s := range e.Series[:capLen(len(e.Series), top)] {
			name := s.Name
			if s.Labels != "" {
				name += "{" + s.Labels + "}"
			}
			var first, last float64
			if len(s.Values) > 0 {
				first, last = s.Values[0], s.Values[len(s.Values)-1]
			}
			fmt.Printf("  %-44s %8d %14g %14g\n", name, len(s.Values), first, last)
		}
		footer(capLen(len(e.Series), top), len(e.Series), "series")
	}
	fmt.Println()
}

// occRow is one node's firmware occupancy assembled from the export.
type occRow struct {
	rxFree, rxLow   float64
	txFree, txLow   float64
	srcFree, srcLow float64
	evq, evqHigh    float64
}

// labelVal extracts one label's value from a rendered label set
// (`dir="X+",node="3"`), returning "" when absent.
func labelVal(labels, key string) string {
	marker := key + `="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// labelInt extracts one numeric label value, returning -1 when absent or
// non-numeric.
func labelInt(labels, key string) int {
	v := labelVal(labels, key)
	if v == "" {
		return -1
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// nodeOf extracts the node id from a rendered label set (`node="3"`),
// returning -1 when absent.
func nodeOf(labels string) int { return labelInt(labels, "node") }

// linkRow is one directed link's contention stats assembled from the
// sampler's utilization series and watermark gauges.
type linkRow struct {
	node      int
	dir       string
	util      float64 // peak sampled window utilization
	queueHigh float64 // queue-depth high-water mark
	waitPs    float64 // accumulated head-of-line blocking
}

// renderLinkContention assembles the per-link contention table: the
// busiest directed links by peak sampled window utilization (the final
// window is flushed at the instant each link went idle, so late-run peaks
// count too), with their queue-depth watermarks and accumulated
// head-of-line blocking time.
func renderLinkContention(e *telemetry.Export, top int) {
	rows := make(map[string]*linkRow)
	row := func(labels string) *linkRow {
		node, dir := nodeOf(labels), labelVal(labels, "dir")
		if node < 0 || dir == "" {
			return nil
		}
		k := fmt.Sprintf("%d/%s", node, dir)
		r := rows[k]
		if r == nil {
			r = &linkRow{node: node, dir: dir}
			rows[k] = r
		}
		return r
	}
	for _, s := range e.Series {
		if s.Name != "fabric_link_utilization" || len(s.Values) == 0 {
			continue
		}
		if r := row(s.Labels); r != nil {
			for _, v := range s.Values {
				if v > r.util {
					r.util = v
				}
			}
		}
	}
	for _, m := range e.Metrics {
		switch m.Name {
		case "fabric_link_hol_wait_ps":
			if r := row(m.Labels); r != nil {
				r.waitPs = m.Value
			}
		case "fabric_link_queue_high":
			if r := row(m.Labels); r != nil {
				r.queueHigh = m.Value
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	all := make([]*linkRow, 0, len(rows))
	for _, r := range rows {
		all = append(all, r)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.util != b.util {
			return a.util > b.util
		}
		if a.waitPs != b.waitPs {
			return a.waitPs > b.waitPs
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.dir < b.dir
	})
	shown := all[:capLen(len(all), top)]
	fmt.Printf("\nlink contention (top %d of %d directed links by peak utilization):\n",
		len(shown), len(all))
	fmt.Printf("  %6s %5s %9s %10s %14s\n", "node", "dir", "peak-util", "queue-high", "hol-wait")
	for _, r := range shown {
		fmt.Printf("  %6d %5s %8.1f%% %10g %12.3fus\n",
			r.node, r.dir, 100*r.util, r.queueHigh, r.waitPs/1e6)
	}
	footer(len(shown), len(all), "links")
}

// hopRow pairs the two by-hop-count histograms: link-level head-of-line
// blocking and end-to-end message latency at each routing distance.
type hopRow struct {
	hops                    int
	travCount, msgCount     uint64
	holMean, holP99         float64
	e2eMean, e2eP50, e2eP99 float64
}

// renderHopLatency assembles the latency-under-load view: for each hop
// count, link traversals with their head-of-line blocking and delivered
// messages with their end-to-end latency.
func renderHopLatency(e *telemetry.Export) {
	rows := make(map[int]*hopRow)
	row := func(labels string) *hopRow {
		h := labelInt(labels, "hops")
		if h < 0 {
			return nil
		}
		r := rows[h]
		if r == nil {
			r = &hopRow{hops: h}
			rows[h] = r
		}
		return r
	}
	mean := func(m telemetry.ExportMetric) float64 {
		if m.Count == 0 {
			return 0
		}
		return float64(m.Sum) / float64(m.Count)
	}
	for _, m := range e.Metrics {
		switch m.Name {
		case "fabric_link_hol_wait_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.travCount = m.Count
				r.holMean = mean(m)
				r.holP99 = float64(m.P99)
			}
		case "portals_msg_e2e_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.msgCount = m.Count
				r.e2eMean = mean(m)
				r.e2eP50 = float64(m.P50)
				r.e2eP99 = float64(m.P99)
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	hops := make([]int, 0, len(rows))
	for h := range rows {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	fmt.Printf("\nlatency under load by hop count:\n")
	fmt.Printf("  %4s %10s %12s %12s %10s %12s %12s %12s\n",
		"hops", "traversals", "hol-mean", "hol-p99", "msgs", "e2e-mean", "e2e-p50", "e2e-p99")
	for _, h := range hops {
		r := rows[h]
		fmt.Printf("  %4d %10d %10.3fus %10.3fus %10d %10.3fus %10.3fus %10.3fus\n",
			r.hops, r.travCount, r.holMean/1e6, r.holP99/1e6,
			r.msgCount, r.e2eMean/1e6, r.e2eP50/1e6, r.e2eP99/1e6)
	}
}

// renderOccupancy assembles the firmware occupancy table from the sampler's
// occupancy series (free now) and watermark gauges (worst case), one row
// per node. Under -top, the most-pressured nodes show first: lowest pool
// low-water mark, then highest event-queue high-water mark.
func renderOccupancy(e *telemetry.Export, top int) {
	rows := make(map[int]*occRow)
	row := func(labels string) *occRow {
		id := nodeOf(labels)
		if id < 0 {
			return nil
		}
		r := rows[id]
		if r == nil {
			r = &occRow{}
			rows[id] = r
		}
		return r
	}
	for _, s := range e.Series {
		r := row(s.Labels)
		if r == nil || len(s.Values) == 0 {
			continue
		}
		last := s.Values[len(s.Values)-1]
		switch s.Name {
		case "node_fw_rx_pendings_free":
			r.rxFree = last
		case "node_fw_tx_pendings_free":
			r.txFree = last
		case "node_fw_sources_free":
			r.srcFree = last
		case "node_evq_depth":
			r.evq = last
		}
	}
	seen := false
	for _, m := range e.Metrics {
		r := row(m.Labels)
		if r == nil {
			continue
		}
		switch m.Name {
		case "node_fw_rx_pendings_low":
			r.rxLow, seen = m.Value, true
		case "node_fw_tx_pendings_low":
			r.txLow, seen = m.Value, true
		case "node_fw_sources_low":
			r.srcLow, seen = m.Value, true
		case "node_evq_high":
			r.evqHigh, seen = m.Value, true
		}
	}
	if !seen {
		return
	}
	minLow := func(r *occRow) float64 {
		m := r.rxLow
		if r.txLow < m {
			m = r.txLow
		}
		if r.srcLow < m {
			m = r.srcLow
		}
		return m
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := rows[ids[i]], rows[ids[j]]
		if la, lb := minLow(a), minLow(b); la != lb {
			return la < lb
		}
		if a.evqHigh != b.evqHigh {
			return a.evqHigh > b.evqHigh
		}
		return ids[i] < ids[j]
	})
	shown := ids[:capLen(len(ids), top)]
	fmt.Printf("\nfirmware occupancy (free now / low-water; evq depth / high-water; most-pressured first):\n")
	fmt.Printf("  %6s %16s %16s %16s %14s\n", "node", "rx-pend", "tx-pend", "sources", "evq")
	for _, id := range shown {
		r := rows[id]
		fmt.Printf("  %6d %16s %16s %16s %14s\n", id,
			fmt.Sprintf("%g lo %g", r.rxFree, r.rxLow),
			fmt.Sprintf("%g lo %g", r.txFree, r.txLow),
			fmt.Sprintf("%g lo %g", r.srcFree, r.srcLow),
			fmt.Sprintf("%g hi %g", r.evq, r.evqHigh))
	}
	footer(len(shown), len(ids), "nodes")
}
