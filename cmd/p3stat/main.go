// Command p3stat renders saved observability artifacts: telemetry JSON
// exports (cmd/netpipe -telemetry) and chrome-trace timelines (cmd/netpipe
// -trace), as aligned text tables — the offline half of the machine's RAS
// view.
//
//	p3stat run.json                # metrics, latency breakdown, series
//	p3stat -trace timeline.json    # per-track / per-handler summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"portals3/internal/telemetry"
	"portals3/internal/trace"
)

func main() {
	traceIn := flag.String("trace", "", "summarize a chrome-trace timeline instead of telemetry JSON")
	flag.Parse()

	switch {
	case *traceIn != "":
		if err := summarizeTrace(*traceIn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			if err := renderTelemetry(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadChrome(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	telemetry.Summarize(recs).Render(os.Stdout)
	return nil
}

func renderTelemetry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	e, err := telemetry.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	render(e, path)
	return nil
}

// ps-valued metric names render in microseconds; everything else raw.
func isPs(name string) bool { return strings.HasSuffix(name, "_ps") }

func render(e *telemetry.Export, path string) {
	fmt.Printf("# %s  (sim time %.3f us)\n", path, float64(e.SimTimePs)/1e6)

	if bd, ok := e.Breakdown(); ok {
		fmt.Println()
		bd.Render(os.Stdout)
	}

	var hists, scalars []telemetry.ExportMetric
	for _, m := range e.Metrics {
		if m.Kind == "histogram" {
			hists = append(hists, m)
		} else {
			scalars = append(scalars, m)
		}
	}

	if len(hists) > 0 {
		fmt.Printf("\nhistograms:\n")
		fmt.Printf("  %-44s %8s %12s %12s %12s %12s %12s\n",
			"name", "count", "mean", "p50", "p99", "p999", "max")
		for _, m := range hists {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			mean := 0.0
			if m.Count > 0 {
				mean = float64(m.Sum) / float64(m.Count)
			}
			if isPs(m.Name) {
				fmt.Printf("  %-44s %8d %10.3fus %10.3fus %10.3fus %10.3fus %10.3fus\n",
					name, m.Count, mean/1e6, float64(m.P50)/1e6,
					float64(m.P99)/1e6, float64(m.P999)/1e6, float64(m.Max)/1e6)
			} else {
				fmt.Printf("  %-44s %8d %12.1f %12d %12d %12d %12d\n",
					name, m.Count, mean, m.P50, m.P99, m.P999, m.Max)
			}
		}
	}

	renderOccupancy(e)

	if len(scalars) > 0 {
		fmt.Printf("\ncounters and gauges:\n")
		for _, m := range scalars {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			fmt.Printf("  %-60s %14g\n", name, m.Value)
		}
	}

	if len(e.Series) > 0 {
		fmt.Printf("\nsampler series:\n")
		fmt.Printf("  %-44s %8s %14s %14s\n", "name", "samples", "first", "last")
		for _, s := range e.Series {
			name := s.Name
			if s.Labels != "" {
				name += "{" + s.Labels + "}"
			}
			var first, last float64
			if len(s.Values) > 0 {
				first, last = s.Values[0], s.Values[len(s.Values)-1]
			}
			fmt.Printf("  %-44s %8d %14g %14g\n", name, len(s.Values), first, last)
		}
	}
	fmt.Println()
}

// occRow is one node's firmware occupancy assembled from the export.
type occRow struct {
	rxFree, rxLow   float64
	txFree, txLow   float64
	srcFree, srcLow float64
	evq, evqHigh    float64
}

// nodeOf extracts the node id from a rendered label set (`node="3"`),
// returning -1 when absent.
func nodeOf(labels string) int {
	const key = `node="`
	i := strings.Index(labels, key)
	if i < 0 {
		return -1
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return -1
	}
	n := 0
	for _, c := range rest[:j] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// renderOccupancy assembles the firmware occupancy table from the sampler's
// occupancy series (free now) and watermark gauges (worst case), one row
// per node.
func renderOccupancy(e *telemetry.Export) {
	rows := make(map[int]*occRow)
	row := func(labels string) *occRow {
		id := nodeOf(labels)
		if id < 0 {
			return nil
		}
		r := rows[id]
		if r == nil {
			r = &occRow{}
			rows[id] = r
		}
		return r
	}
	for _, s := range e.Series {
		r := row(s.Labels)
		if r == nil || len(s.Values) == 0 {
			continue
		}
		last := s.Values[len(s.Values)-1]
		switch s.Name {
		case "node_fw_rx_pendings_free":
			r.rxFree = last
		case "node_fw_tx_pendings_free":
			r.txFree = last
		case "node_fw_sources_free":
			r.srcFree = last
		case "node_evq_depth":
			r.evq = last
		}
	}
	seen := false
	for _, m := range e.Metrics {
		r := row(m.Labels)
		if r == nil {
			continue
		}
		switch m.Name {
		case "node_fw_rx_pendings_low":
			r.rxLow, seen = m.Value, true
		case "node_fw_tx_pendings_low":
			r.txLow, seen = m.Value, true
		case "node_fw_sources_low":
			r.srcLow, seen = m.Value, true
		case "node_evq_high":
			r.evqHigh, seen = m.Value, true
		}
	}
	if !seen {
		return
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\nfirmware occupancy (free now / low-water; evq depth / high-water):\n")
	fmt.Printf("  %6s %16s %16s %16s %14s\n", "node", "rx-pend", "tx-pend", "sources", "evq")
	for _, id := range ids {
		r := rows[id]
		fmt.Printf("  %6d %16s %16s %16s %14s\n", id,
			fmt.Sprintf("%g lo %g", r.rxFree, r.rxLow),
			fmt.Sprintf("%g lo %g", r.txFree, r.txLow),
			fmt.Sprintf("%g lo %g", r.srcFree, r.srcLow),
			fmt.Sprintf("%g hi %g", r.evq, r.evqHigh))
	}
}
