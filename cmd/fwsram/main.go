// Command fwsram evaluates the paper's SeaStar SRAM occupancy formula
// (§4.2):
//
//	M = S·Ssize + Σ Pi·Psize
//
// for a firmware configuration, and reports what fits in the chip's 384 KB
// alongside the 22 KB firmware image. The default is the paper's
// configuration: 1,024 sources and one generic process with 1,274 pendings.
//
//	fwsram
//	fwsram -sources 2048 -pendings 1274,1274,1274   # generic + two accel
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"portals3/internal/model"
)

func main() {
	sources := flag.Int("sources", 0, "global source structures (default: the paper's 1024)")
	pendings := flag.String("pendings", "", "comma-separated pendings per firmware-level process (default: the paper's 1274)")
	flag.Parse()

	p := model.Defaults()
	if *sources > 0 {
		p.NumSources = *sources
	}
	pools := []int{p.NumGenericPendings}
	if *pendings != "" {
		pools = nil
		for _, s := range strings.Split(*pendings, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "bad pending count %q\n", s)
				os.Exit(2)
			}
			pools = append(pools, v)
		}
	}

	m := p.SRAMOccupancy(pools)
	free := p.SRAMFree(pools)
	fmt.Printf("SeaStar local SRAM:        %8d bytes (384 KB, paper §2)\n", p.SRAMBytes)
	fmt.Printf("firmware image:            %8d bytes (22 KB, paper §4)\n", p.FwImageBytes)
	fmt.Printf("sources:                   %8d x %d B = %d bytes\n", p.NumSources, p.SourceBytes, int64(p.NumSources)*p.SourceBytes)
	for i, pi := range pools {
		kind := "generic"
		if i > 0 {
			kind = fmt.Sprintf("accel #%d", i)
		}
		fmt.Printf("pendings (%-8s):       %8d x %d B = %d bytes\n", kind, pi, p.PendingBytes, int64(pi)*p.PendingBytes)
	}
	fmt.Printf("M = S*Ssize + sum Pi*Psize = %d bytes\n", m)
	fmt.Printf("free after image + pools:  %8d bytes\n", free)
	if free < 0 {
		fmt.Println("CONFIGURATION DOES NOT FIT")
		os.Exit(1)
	}
	extra := free / (int64(p.NumGenericPendings) * p.PendingBytes)
	fmt.Printf("additional %d-pending pools that still fit: %d\n", p.NumGenericPendings, extra)
	fmt.Println(`(paper §4.2: "several more similarly sized pending pools can be supported")`)
}
