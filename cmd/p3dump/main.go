// Command p3dump renders flight-recorder dump files (written by
// cmd/netpipe -flightrec, or by the machine on panic/stall/ledger
// failures) as human-readable reports.
//
//	p3dump crash.p3dump                 # occupancy table + merged timeline
//	p3dump -spans crash.p3dump          # list causal span ids present
//	p3dump -span 17 crash.p3dump        # one message's hop-by-hop path
//	p3dump -chrome out.json crash.p3dump  # chrome-trace timeline (Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"

	"portals3/internal/flightrec"
)

func main() {
	span := flag.Uint64("span", 0, "render only this causal span's hop-by-hop timeline")
	spans := flag.Bool("spans", false, "list the causal span ids present in the dump")
	chrome := flag.String("chrome", "", "write a chrome-trace timeline to this file instead of text")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := render(path, *span, *spans, *chrome); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func render(path string, span uint64, listSpans bool, chrome string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := flightrec.Decode(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	switch {
	case chrome != "":
		out, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := d.WriteChrome(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d nodes, %d spans -> %s\n", path, len(d.Nodes), len(d.Spans()), chrome)
	case listSpans:
		fmt.Printf("%s: %s at %v (trigger %s)\n", path, d.Reason, d.At, d.Trigger)
		for _, s := range d.Spans() {
			fmt.Printf("  span %-8d %d events\n", s, len(d.Span(s)))
		}
	case span != 0:
		d.RenderSpan(os.Stdout, span)
	default:
		d.RenderText(os.Stdout)
	}
	return nil
}
