// Command netpipe is the benchmark driver: it regenerates the paper's
// figures over the simulated XT3 (two adjacent Catamount nodes, as in §5)
// and prints NetPIPE-style tables.
//
// Reproduce a whole figure:
//
//	netpipe -fig 4        # latency (paper Figure 4)
//	netpipe -fig 5        # uni-directional bandwidth (Figure 5)
//	netpipe -fig 6        # streaming bandwidth (Figure 6)
//	netpipe -fig 7        # bi-directional bandwidth (Figure 7)
//	netpipe -fig all -checks
//
// Or run one curve:
//
//	netpipe -series put -pattern pingpong -max 1048576
//	netpipe -series mpich2 -pattern stream
//	netpipe -series put -pattern pingpong -accel   # accelerated mode
//
// The fabric's fault-injection plane is exposed for lossy-fabric runs;
// combine it with -gbn so the go-back-n protocol recovers the losses
// (without it, dropped frames are simply gone, as on a panic-policy
// machine):
//
//	netpipe -series put -gbn -faults drop:data:0.01,drop:fcack:0.05
//	netpipe -series put -gbn -faults delay:data:0.02:20us -faultseed 7
//
// Timed faults — link flaps, node stalls, firmware restarts, loss bursts —
// use the declarative -schedule grammar instead; unlike -faults they are
// deterministic in virtual time and work at any -shards count:
//
//	netpipe -series put -pattern stream -gbn -schedule 'linkdown:0:X+:150us:100us'
//	netpipe -torus -shards 4 -gbn -schedule 'stall:5:400us:80us,burst:drop:data:0.2:200us:60us'
//
// The machine-scale torus halo exchange runs on the sharded parallel
// kernel; -shards picks the lane count and -seq forces the sequential
// reference (simulated results are bit-identical either way):
//
//	netpipe -torus -shards 4
//	netpipe -torus -seq -stats
//
// Host-side profiling (go tool pprof) works with every mode:
//
//	netpipe -torus -shards 4 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"portals3/internal/experiments"
	"portals3/internal/flightrec"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/trace"
)

// scheduleTopology is the topology the selected run mode will build, used
// to validate -schedule before any machine exists.
func scheduleTopology(torusMode bool, dim int) (*topo.Topology, error) {
	if torusMode {
		return topo.XT3Torus(dim, dim, dim)
	}
	return topo.New(2, 1, 1, false, false, false)
}

// writeTelemetry exports the machine's telemetry: Prometheus text for a
// .prom suffix, the JSON document otherwise.
func writeTelemetry(m *machine.Machine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return m.Telemetry().WritePrometheus(f, m.S.Now())
	}
	return m.Telemetry().WriteJSON(f, m.S.Now())
}

// writeDumps saves the run's flight-recorder artifacts: the end-of-run
// snapshot to out, plus each failure report's at-detection dump alongside
// it. Every dump is deterministic — a same-seed rerun writes identical
// bytes.
func writeDumps(m *machine.Machine, out string) {
	writeDump := func(path string, d *flightrec.Dump) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	base := strings.TrimSuffix(out, ".p3dump")
	for i, r := range m.Reports() {
		fmt.Printf("\nfailure: %v\n", r)
		if r.Dump != nil {
			path := fmt.Sprintf("%s.%d.%s.p3dump", base, i, r.Kind)
			writeDump(path, r.Dump)
			fmt.Printf("failure dump written to %s (render with p3dump)\n", path)
		}
	}
	writeDump(out, m.TakeDump("end of run"))
	fmt.Printf("flight recorder dump written to %s (render with p3dump)\n", out)
}

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 4, 5, 6, 7 or all")
	series := flag.String("series", "", "single curve: put, get, mpich1, mpich2")
	pattern := flag.String("pattern", "pingpong", "pingpong, stream or bidir")
	maxBytes := flag.Int("max", 8<<20, "largest message size in bytes")
	accel := flag.Bool("accel", false, "use accelerated-mode Portals processing")
	checks := flag.Bool("checks", false, "print paper-vs-measured checks (with -fig)")
	traceOut := flag.String("trace", "", "write a chrome://tracing timeline of the run (with -series)")
	stats := flag.Bool("stats", false, "print machine counters after the run (with -series)")
	telemetryOut := flag.String("telemetry", "", "write telemetry after the run: JSON, or Prometheus text with a .prom suffix (with -series)")
	sample := flag.Int("sample", 1000, "RAS sampler period in simulated microseconds, 0 to disable (with -telemetry)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations (A1-A6) and print checks")
	faults := flag.String("faults", "", "seeded fault injection: kind:frame:prob[:delay] rules, comma-separated (kinds drop,dup,delay,reorder; frames any,data,fcack,fcnack)")
	faultSeed := flag.Int64("faultseed", 0, "fault plane PRNG seed; 0 uses the built-in default (with -faults)")
	schedule := flag.String("schedule", "", "declarative timed-fault schedule: linkdown:NODE:DIR:AT:DUR, stall:NODE:AT:DUR, restart:NODE:AT:DUR, burst:KIND:FRAME:PROB:AT:DUR[:DELAY], corrupt:NODE:AT, comma-separated; works at any -shards count (combine with -gbn to recover losses)")
	gbn := flag.Bool("gbn", false, "enable the go-back-n loss/exhaustion recovery protocol (with -series)")
	flightrecOn := flag.Bool("flightrec", false, "enable the per-node flight recorder and write an end-of-run dump (with -series)")
	flightrecEvents := flag.Int("flightrec-events", 0, "flight recorder ring capacity per node, 0 for the default")
	dumpOnStall := flag.Int("dump-on-stall", 0, "stall detection window in simulated microseconds; a stalled flow dumps the recorder (with -flightrec)")
	dumpOut := flag.String("dumpout", "netpipe.p3dump", "flight recorder dump file (with -flightrec; render with p3dump)")
	torus := flag.Bool("torus", false, "run a machine-scale torus workload instead of a netpipe curve")
	dim := flag.Int("dim", 8, "torus dimension: dim^3 nodes (with -torus)")
	shards := flag.Int("shards", 1, "event lanes for the sharded parallel kernel (with -torus)")
	seq := flag.Bool("seq", false, "force the sequential reference kernel, shards=1 (with -torus)")
	workload := flag.String("workload", "halo", "torus workload: halo, collective, random, hotspot or sweep (with -torus)")
	steps := flag.Int("steps", 0, "iterations: halo exchange steps or collective rounds, 0 for the workload default (with -torus)")
	msgs := flag.Int("msgs", 8, "messages per sender (with -workload random/hotspot/sweep)")
	load := flag.Float64("load", 1.0, "offered load per sender as a fraction of link line rate (with -workload random/hotspot)")
	loads := flag.String("loads", "0.25,0.5,0.75,1.0", "comma-separated offered-load ladder (with -workload sweep)")
	hot := flag.Int("hot", 0, "hot-spot destination node id (with -workload hotspot)")
	hotFrac := flag.Float64("hotfrac", 0.2, "probability a message targets the hot node (with -workload hotspot)")
	wseed := flag.Uint64("wseed", 1, "destination-stream seed (with -workload random/hotspot/sweep)")
	progress := flag.Bool("progress", false, "print a live progress line (virtual-time rate, events/sec, lane imbalance, heap, ETA) to stderr (with -torus)")
	progressEvery := flag.Duration("progress-every", time.Second, "progress line period in wall-clock (with -progress)")
	hostprofOut := flag.String("hostprof", "", "write the host-execution profile (per-lane busy/wait/drain, stragglers, memory watermarks) as JSON; render with p3stat (with -torus)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a host heap profile at exit to this file (go tool pprof)")
	flag.Parse()
	// Every -workload names a torus workload, so setting it explicitly
	// implies -torus: `netpipe -workload sweep -shards 4` runs the sweep.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workload" {
			*torus = true
		}
	})

	p := model.Defaults()
	rules, err := model.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Faults = rules
	p.FaultSeed = *faultSeed
	// Flag validation happens here, before any machine exists, so a bad
	// combination is a clear exit-2 diagnostic rather than a panic deep in
	// construction (machine.seqOnly or a schedule-validation panic).
	if *seq && *shards > 1 {
		fmt.Fprintf(os.Stderr, "netpipe: conflicting flags: -seq forces the sequential reference kernel; drop -seq or -shards %d\n", *shards)
		os.Exit(2)
	}
	if (*progress || *hostprofOut != "") && !*torus {
		fmt.Fprintln(os.Stderr, "netpipe: -progress/-hostprof profile the sharded kernel's lanes; they need -torus (classic runs profile with -cpuprofile)")
		os.Exit(2)
	}
	if *progressEvery <= 0 {
		fmt.Fprintf(os.Stderr, "netpipe: -progress-every %v must be positive\n", *progressEvery)
		os.Exit(2)
	}
	var loadLadder []float64
	if *torus {
		if *dim < 3 {
			fmt.Fprintf(os.Stderr, "netpipe: -dim %d: a torus needs dim >= 3 (smaller axes have no wraparound)\n", *dim)
			os.Exit(2)
		}
		if *shards < 1 {
			fmt.Fprintf(os.Stderr, "netpipe: -shards %d: the kernel needs at least one event lane\n", *shards)
			os.Exit(2)
		}
		if nodes := *dim * *dim * *dim; *shards > nodes {
			fmt.Fprintf(os.Stderr, "netpipe: -shards %d exceeds the %d-node torus: surplus lanes would sit permanently empty\n", *shards, nodes)
			os.Exit(2)
		}
		switch *workload {
		case "halo", "collective", "random", "hotspot", "sweep":
		default:
			fmt.Fprintf(os.Stderr, "netpipe: unknown -workload %q (want halo, collective, random, hotspot or sweep)\n", *workload)
			os.Exit(2)
		}
		if *workload == "hotspot" {
			if nodes := *dim * *dim * *dim; *hot < 0 || *hot >= nodes {
				fmt.Fprintf(os.Stderr, "netpipe: -hot %d outside the %d-node torus\n", *hot, nodes)
				os.Exit(2)
			}
			if *hotFrac <= 0 || *hotFrac > 1 {
				fmt.Fprintf(os.Stderr, "netpipe: -hotfrac %g must be in (0, 1]\n", *hotFrac)
				os.Exit(2)
			}
		}
		if (*workload == "random" || *workload == "hotspot") && *load <= 0 {
			fmt.Fprintf(os.Stderr, "netpipe: -load %g must be positive\n", *load)
			os.Exit(2)
		}
		if *workload == "sweep" {
			for _, s := range strings.Split(*loads, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil || v <= 0 {
					fmt.Fprintf(os.Stderr, "netpipe: -loads %q: each entry must be a positive load factor\n", *loads)
					os.Exit(2)
				}
				loadLadder = append(loadLadder, v)
			}
		}
	}
	if p.Schedule, err = model.ParseSchedule(*schedule); err != nil {
		fmt.Fprintf(os.Stderr, "netpipe: -schedule: %v\n", err)
		os.Exit(2)
	}
	if len(p.Schedule) > 0 {
		if *fig != "" || *ablations {
			fmt.Fprintln(os.Stderr, "netpipe: -schedule applies to a single run; use it with -series or -torus, not -fig/-ablations")
			os.Exit(2)
		}
		// Validate against the topology the run will actually build: the
		// dim^3 torus, or the two-node netpipe pair.
		tp, err := scheduleTopology(*torus, *dim)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netpipe: ", err)
			os.Exit(2)
		}
		if err := p.Schedule.Validate(tp); err != nil {
			fmt.Fprintf(os.Stderr, "netpipe: -schedule: %v\n", err)
			os.Exit(2)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case *ablations:
		runAblations(p)
	case *torus:
		n := *shards
		if *seq {
			n = 1
		}
		runTorus(p, torusOpts{
			workload: *workload, dim: *dim, shards: n, steps: *steps,
			msgs: *msgs, load: *load, loads: loadLadder,
			hot: topo.NodeID(*hot), hotFrac: *hotFrac, wseed: *wseed,
			gbn: *gbn, stats: *stats, telemetryOut: *telemetryOut, sampleUs: *sample,
			progress: *progress, progressEvery: *progressEvery, hostprofOut: *hostprofOut,
		})
	case *fig != "":
		runFigures(p, *fig, *checks)
	case *series != "":
		fr := frOpts{on: *flightrecOn || *dumpOnStall > 0, events: *flightrecEvents,
			stallUs: *dumpOnStall, out: *dumpOut}
		runSeries(p, *series, *pattern, *maxBytes, *accel, *gbn, *traceOut, *stats, *telemetryOut, *sample, fr)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("cpu profile written to %s (go tool pprof)\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("heap profile written to %s (go tool pprof)\n", *memprofile)
	}
}

// torusOpts carries the -torus flags into the workload runners.
type torusOpts struct {
	workload     string
	dim, shards  int
	steps, msgs  int
	load         float64
	loads        []float64 // sweep ladder
	hot          topo.NodeID
	hotFrac      float64
	wseed        uint64
	gbn, stats   bool
	telemetryOut string
	sampleUs     int

	progress      bool
	progressEvery time.Duration
	hostprofOut   string
}

// baseConfig assembles the TorusConfig shared by every workload from the
// command line and the fault plan.
func (o torusOpts) baseConfig(p model.Params) experiments.TorusConfig {
	cfg := experiments.DefaultTorusConfig()
	cfg.Dim = o.dim
	cfg.Shards = o.shards
	cfg.GoBackN = o.gbn
	cfg.Faults = p.Faults
	cfg.FaultSeed = p.FaultSeed
	cfg.Schedule = p.Schedule
	cfg.Telemetry = o.telemetryOut != ""
	if cfg.Telemetry && o.sampleUs > 0 {
		cfg.SamplePeriod = sim.Time(o.sampleUs) * sim.Microsecond
	}
	if o.steps > 0 {
		cfg.Steps = o.steps
	}
	if o.hostprofOut != "" || o.progress {
		cfg.HostProf = true
	}
	if o.progress {
		cfg.Progress = printProgress
		cfg.ProgressEvery = o.progressEvery
	}
	return cfg
}

// printProgress renders one live host-execution snapshot on stderr — the
// -progress line. Stdout stays reserved for the workload's tables.
func printProgress(hp sim.HostProgress) {
	eta := "?"
	if hp.ETANs >= 0 {
		eta = fmtWall(hp.ETANs)
	}
	target := ""
	if hp.Horizon > 0 && hp.Horizon != sim.Never {
		target = fmt.Sprintf("/%.1fus", float64(hp.Horizon)/1e6)
	}
	fmt.Fprintf(os.Stderr,
		"progress: t=%.1fus%s wall=%s rate=%.1fus/s events=%d (%.0f/s) windows=%d imb=%.1f%% heap=%.1fMB eta=%s\n",
		float64(hp.SimNow)/1e6, target, fmtWall(hp.WallNs), hp.SimRate,
		hp.Events, hp.EventRate, hp.Windows, hp.ImbalancePct,
		float64(hp.HeapInuse)/(1<<20), eta)
}

// fmtWall renders wall-clock nanoseconds compactly (1.2s, 340ms).
func fmtWall(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

// writeHostProfile writes the accumulated host-execution profile JSON.
func writeHostProfile(hp *machine.HostProfile, path string) {
	if hp == nil {
		fmt.Fprintln(os.Stderr, "netpipe: no host profile collected")
		os.Exit(1)
	}
	b, err := hp.JSON()
	if err == nil {
		err = os.WriteFile(path, b, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("host profile written to %s (render with p3stat)\n", path)
}

// trafficConfig assembles the generator shape for the random/hotspot/sweep
// workloads at one offered load.
func (o torusOpts) trafficConfig(p model.Params, load float64) experiments.TrafficConfig {
	return experiments.TrafficConfig{
		TorusConfig: o.baseConfig(p),
		Msgs:        o.msgs,
		Load:        load,
		HotFrac:     o.hotFrac,
		HotNode:     o.hot,
		Seed:        o.wseed,
	}
}

// runTorus drives one machine-scale workload (or the latency-under-load
// sweep) on the sharded kernel. With telemetry on, the RAS sampler runs
// too (lane-local, merged at snapshot time) so the export carries the
// per-link contention series, and the per-hop-count latency summary
// prints after the run.
func runTorus(p model.Params, o torusOpts) {
	if o.workload == "sweep" {
		runSweep(p, o)
		return
	}
	var r experiments.TorusResult
	switch o.workload {
	case "halo":
		cfg := o.baseConfig(p)
		r = experiments.TorusHalo(cfg)
		fmt.Printf("# torus halo: %d nodes (%dx%dx%d, radius %d), %d KB faces, %d steps, shards=%d\n",
			r.Nodes, o.dim, o.dim, o.dim, cfg.Radius, cfg.Bytes/1024, cfg.Steps, r.Shards)
	case "collective":
		cfg := experiments.DefaultCollectiveConfig()
		base := o.baseConfig(p)
		base.Bytes, base.Steps = cfg.Bytes, cfg.Steps
		if o.steps > 0 {
			base.Steps = o.steps
		}
		r = experiments.TorusCollective(base)
		fmt.Printf("# torus collective: %d ranks (%dx%dx%d), %d-byte vectors, %d allreduce+bcast rounds, shards=%d\n",
			r.Nodes, o.dim, o.dim, o.dim, base.Bytes, base.Steps, r.Shards)
	case "random":
		cfg := o.trafficConfig(p, o.load)
		cfg.HotFrac = 0
		r = experiments.TorusTraffic(cfg)
		fmt.Printf("# torus uniform traffic: %d nodes (%dx%dx%d), %d x %d B per sender at load %.2f, shards=%d\n",
			r.Nodes, o.dim, o.dim, o.dim, cfg.Msgs, cfg.Bytes, cfg.Load, r.Shards)
	case "hotspot":
		cfg := o.trafficConfig(p, o.load)
		r = experiments.TorusTraffic(cfg)
		fmt.Printf("# torus hot-spot traffic: %d nodes (%dx%dx%d), %d x %d B per sender at load %.2f, %.0f%% -> node %d, shards=%d\n",
			r.Nodes, o.dim, o.dim, o.dim, cfg.Msgs, cfg.Bytes, cfg.Load, 100*cfg.HotFrac, cfg.HotNode, r.Shards)
	}
	fmt.Printf("finished at %.1f us simulated, %d kernel windows\n",
		float64(r.FinishPs)/1e6, r.Windows)
	if o.stats {
		fmt.Println()
		fmt.Print(r.StatsText)
	}
	if r.FaultsLine != "" {
		fmt.Printf("fault plane: %s\n", r.FaultsLine)
	}
	if o.telemetryOut != "" {
		if err := os.WriteFile(o.telemetryOut, r.TelemetryJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if rows, err := experiments.HopCurve(r.TelemetryJSON); err == nil && len(rows) > 0 {
			fmt.Println()
			experiments.RenderHopCurve(os.Stdout, rows)
		}
		fmt.Printf("telemetry written to %s (render with p3stat)\n", o.telemetryOut)
	}
	if o.hostprofOut != "" {
		writeHostProfile(r.HostProfile, o.hostprofOut)
	}
	for _, e := range r.Errors {
		fmt.Fprintln(os.Stderr, "ERROR: "+e)
	}
	if len(r.Errors) > 0 {
		os.Exit(1)
	}
}

// runSweep runs the uniform traffic generator once per offered load and
// prints each arm's per-hop-count latency curve plus a closing summary —
// the latency-under-load methodology of EXPERIMENTS.md. Telemetry is
// forced on (the curves come from it); with -telemetry set, each arm's
// export lands in LOAD-prefixed files.
func runSweep(p model.Params, o torusOpts) {
	fmt.Printf("# latency-under-load sweep: %d nodes (%dx%dx%d), %d x %d B per sender, loads %v, shards=%d\n",
		o.dim*o.dim*o.dim, o.dim, o.dim, o.dim, o.msgs, experiments.DefaultTorusConfig().Bytes, o.loads, o.shards)
	type arm struct {
		load            float64
		finishPs        int64
		rows            []experiments.HopRow
		e2eMean, e2eP99 float64
	}
	arms := make([]arm, 0, len(o.loads))
	failed := false
	var hostprof *machine.HostProfile // merged across the sweep's arms
	for _, load := range o.loads {
		cfg := o.trafficConfig(p, load)
		cfg.HotFrac = 0
		cfg.Telemetry = true
		if cfg.SamplePeriod == 0 {
			cfg.SamplePeriod = sim.Time(o.sampleUs) * sim.Microsecond
		}
		r := experiments.TorusTraffic(cfg)
		if r.HostProfile != nil {
			if hostprof == nil {
				hostprof = r.HostProfile
			} else {
				hostprof.Merge(r.HostProfile)
			}
		}
		for _, e := range r.Errors {
			fmt.Fprintln(os.Stderr, "ERROR: "+e)
			failed = true
		}
		rows, err := experiments.HopCurve(r.TelemetryJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		a := arm{load: load, finishPs: r.FinishPs, rows: rows}
		var msgs uint64
		for _, row := range rows {
			a.e2eMean += row.E2EMeanPs * float64(row.Msgs)
			msgs += row.Msgs
			if row.E2EP99Ps > a.e2eP99 {
				a.e2eP99 = row.E2EP99Ps
			}
		}
		if msgs > 0 {
			a.e2eMean /= float64(msgs)
		}
		arms = append(arms, a)
		fmt.Printf("\n== load %.2f (finished at %.1f us, %d kernel windows)\n",
			load, float64(r.FinishPs)/1e6, r.Windows)
		experiments.RenderHopCurve(os.Stdout, rows)
		if o.telemetryOut != "" {
			path := fmt.Sprintf("load%.2f-%s", load, o.telemetryOut)
			if err := os.WriteFile(path, r.TelemetryJSON, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("telemetry written to %s (render with p3stat)\n", path)
		}
	}
	fmt.Printf("\nlatency vs offered load:\n")
	fmt.Printf("  %6s %12s %12s %12s\n", "load", "finish", "e2e-mean", "e2e-p99")
	for _, a := range arms {
		fmt.Printf("  %6.2f %10.1fus %10.3fus %10.3fus\n",
			a.load, float64(a.finishPs)/1e6, a.e2eMean/1e6, a.e2eP99/1e6)
	}
	if o.hostprofOut != "" {
		writeHostProfile(hostprof, o.hostprofOut)
	}
	if failed {
		os.Exit(1)
	}
}

// runAblations reproduces the A1-A5 ablation studies of DESIGN.md.
func runAblations(p model.Params) {
	fmt.Println("# A1: generic vs accelerated mode (paper §3.3)")
	experiments.RenderChecks(os.Stdout, experiments.AblationAccelerated(p).Checks())
	fmt.Println("\n# A2: resource exhaustion, panic vs go-back-n (paper §4.3)")
	gbn := experiments.AblationGoBackN(p, 4, 30, 2048)
	fmt.Printf("  %v\n  %v\n", gbn[0], gbn[1])
	experiments.RenderChecks(os.Stdout, experiments.GbnChecks(gbn))
	fmt.Println("\n# A6: incast over a lossy fabric, panic vs go-back-n (DESIGN.md §9)")
	lossy := experiments.AblationLossyIncast(p, 4, 30, 2048, 0xfa017)
	fmt.Printf("  %v\n  %v\n", lossy.Arms[0], lossy.Arms[1])
	experiments.RenderChecks(os.Stdout, experiments.LossyChecks(lossy))
	fmt.Println("\n# A3: inline payload optimization removed (paper §6)")
	experiments.RenderChecks(os.Stdout, experiments.AblationInline(p).Checks())
	fmt.Println("\n# A4: interrupt coalescing removed (paper §4.1)")
	experiments.RenderChecks(os.Stdout, experiments.AblationCoalescing(p).Checks())
	fmt.Println("\n# A5: RX FIFO shrunk to 2 KB")
	experiments.RenderChecks(os.Stdout, experiments.AblationRxFIFO(p).Checks())
	fmt.Println("\n# model robustness")
	experiments.RenderChecks(os.Stdout, experiments.ChunkRobustness(p))
}

func runFigures(p model.Params, which string, checks bool) {
	var f4, f5, f6, f7 experiments.Figure
	show := func(f experiments.Figure) { f.Render(os.Stdout); fmt.Println() }
	switch which {
	case "4":
		f4 = experiments.Figure4(p)
		show(f4)
		f4.RenderPercentiles(os.Stdout)
		if checks {
			experiments.RenderChecks(os.Stdout, experiments.LatencyChecks(f4))
			showBreakdown(p)
		}
	case "5", "6", "7":
		var f experiments.Figure
		switch which {
		case "5":
			f = experiments.Figure5(p)
		case "6":
			f = experiments.Figure6(p)
		case "7":
			f = experiments.Figure7(p)
		}
		show(f)
	case "all":
		f4, f5, f6, f7 = experiments.Figure4(p), experiments.Figure5(p), experiments.Figure6(p), experiments.Figure7(p)
		for _, f := range []experiments.Figure{f4, f5, f6, f7} {
			show(f)
		}
		f4.RenderPercentiles(os.Stdout)
		if checks {
			experiments.RenderChecks(os.Stdout, experiments.LatencyChecks(f4))
			experiments.RenderChecks(os.Stdout, experiments.BandwidthChecks(f5, f6, f7))
			showBreakdown(p)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", which)
		os.Exit(2)
	}
}

// showBreakdown runs the telemetry-enabled attribution sweep and prints
// the paper's latency decomposition with its checks.
func showBreakdown(p model.Params) {
	fmt.Println()
	_, bd := experiments.TelemetryBreakdown(p)
	bd.Render(os.Stdout)
	experiments.RenderChecks(os.Stdout, experiments.BreakdownChecks(bd))
}

// frOpts carries the flight-recorder flags into runSeries.
type frOpts struct {
	on      bool
	events  int // ring capacity per node, 0 for the default
	stallUs int // stall detection window in simulated microseconds, 0 off
	out     string
}

func runSeries(p model.Params, series, pattern string, maxBytes int, accel, gbn bool, traceOut string, stats bool, telemetryOut string, sampleUs int, fr frOpts) {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = maxBytes
	if accel {
		cfg.Mode = machine.Accelerated
	}
	var mach *machine.Machine
	var tracer *trace.Tracer
	if traceOut != "" || stats || telemetryOut != "" || gbn || fr.on || len(p.Faults) > 0 || len(p.Schedule) > 0 {
		cfg.Observe = func(m *machine.Machine) {
			mach = m
			if gbn {
				m.EnableGoBackN()
			}
			if fr.on {
				m.EnableFlightRecorder(fr.events)
				if fr.stallUs > 0 {
					m.StartStallDetector(sim.Time(fr.stallUs) * sim.Microsecond)
				}
			}
			if traceOut != "" {
				tracer = m.EnableTracing()
			}
			if telemetryOut != "" {
				m.EnableTelemetry()
				if sampleUs > 0 {
					m.StartSampler(sim.Time(sampleUs) * sim.Microsecond)
				}
			}
		}
	}
	var pat netpipe.Pattern
	switch pattern {
	case "pingpong":
		pat = netpipe.PingPong
	case "stream":
		pat = netpipe.Stream
	case "bidir":
		pat = netpipe.Bidir
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", pattern)
		os.Exit(2)
	}
	var r netpipe.Result
	switch series {
	case "put":
		r = netpipe.RunPortals(p, netpipe.OpPut, pat, cfg)
	case "get":
		r = netpipe.RunPortals(p, netpipe.OpGet, pat, cfg)
	case "mpich1":
		r = netpipe.RunMPI(p, mpi.MPICH1, pat, cfg)
	case "mpich2":
		r = netpipe.RunMPI(p, mpi.MPICH2, pat, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown series %q\n", series)
		os.Exit(2)
	}
	fmt.Printf("# %s %s (mode: %v)\n", r.Series, pat, cfg.Mode)
	for _, pt := range r.Points {
		fmt.Println(pt)
	}
	if stats && mach != nil {
		fmt.Println()
		fmt.Print(mach.Stats())
	}
	if (len(p.Faults) > 0 || len(p.Schedule) > 0) && mach != nil {
		fmt.Printf("\nfault plane: %v\n", mach.Faults().Snapshot())
	}
	if fr.on && mach != nil {
		writeDumps(mach, fr.out)
	}
	if telemetryOut != "" && mach != nil {
		if err := writeTelemetry(mach, telemetryOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if bd, ok := mach.Telemetry().Snapshot(mach.S.Now()).Breakdown(); ok {
			fmt.Println()
			bd.Render(os.Stdout)
		}
		fmt.Printf("telemetry written to %s (render with p3stat)\n", telemetryOut)
	}
	if tracer != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tracer.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events written to %s (open in chrome://tracing or Perfetto)\n", tracer.Len(), traceOut)
	}
	// A scheduled-fault run that ends with open failure reports (ledger
	// imbalance, stall, panic) exits nonzero so scripted repros can gate on
	// it; writeDumps already printed the reports when the recorder is on.
	if len(p.Schedule) > 0 && mach != nil && len(mach.Reports()) > 0 {
		if !fr.on {
			for _, r := range mach.Reports() {
				fmt.Fprintf(os.Stderr, "failure: %v\n", r)
			}
		}
		os.Exit(1)
	}
}
