// Command netpipe is the benchmark driver: it regenerates the paper's
// figures over the simulated XT3 (two adjacent Catamount nodes, as in §5)
// and prints NetPIPE-style tables.
//
// Reproduce a whole figure:
//
//	netpipe -fig 4        # latency (paper Figure 4)
//	netpipe -fig 5        # uni-directional bandwidth (Figure 5)
//	netpipe -fig 6        # streaming bandwidth (Figure 6)
//	netpipe -fig 7        # bi-directional bandwidth (Figure 7)
//	netpipe -fig all -checks
//
// Or run one curve:
//
//	netpipe -series put -pattern pingpong -max 1048576
//	netpipe -series mpich2 -pattern stream
//	netpipe -series put -pattern pingpong -accel   # accelerated mode
//
// The fabric's fault-injection plane is exposed for lossy-fabric runs;
// combine it with -gbn so the go-back-n protocol recovers the losses
// (without it, dropped frames are simply gone, as on a panic-policy
// machine):
//
//	netpipe -series put -gbn -faults drop:data:0.01,drop:fcack:0.05
//	netpipe -series put -gbn -faults delay:data:0.02:20us -faultseed 7
//
// Timed faults — link flaps, node stalls, firmware restarts, loss bursts —
// use the declarative -schedule grammar instead; unlike -faults they are
// deterministic in virtual time and work at any -shards count:
//
//	netpipe -series put -pattern stream -gbn -schedule 'linkdown:0:X+:150us:100us'
//	netpipe -torus -shards 4 -gbn -schedule 'stall:5:400us:80us,burst:drop:data:0.2:200us:60us'
//
// The machine-scale torus halo exchange runs on the sharded parallel
// kernel; -shards picks the lane count and -seq forces the sequential
// reference (simulated results are bit-identical either way):
//
//	netpipe -torus -shards 4
//	netpipe -torus -seq -stats
//
// Host-side profiling (go tool pprof) works with every mode:
//
//	netpipe -torus -shards 4 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"portals3/internal/experiments"
	"portals3/internal/flightrec"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
)

// scheduleTopology is the topology the selected run mode will build, used
// to validate -schedule before any machine exists.
func scheduleTopology(torusMode bool, dim int) (*topo.Topology, error) {
	if torusMode {
		return topo.XT3Torus(dim, dim, dim)
	}
	return topo.New(2, 1, 1, false, false, false)
}

// writeTelemetry exports the machine's telemetry: Prometheus text for a
// .prom suffix, the JSON document otherwise.
func writeTelemetry(m *machine.Machine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return m.Telemetry().WritePrometheus(f, m.S.Now())
	}
	return m.Telemetry().WriteJSON(f, m.S.Now())
}

// writeDumps saves the run's flight-recorder artifacts: the end-of-run
// snapshot to out, plus each failure report's at-detection dump alongside
// it. Every dump is deterministic — a same-seed rerun writes identical
// bytes.
func writeDumps(m *machine.Machine, out string) {
	writeDump := func(path string, d *flightrec.Dump) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	base := strings.TrimSuffix(out, ".p3dump")
	for i, r := range m.Reports() {
		fmt.Printf("\nfailure: %v\n", r)
		if r.Dump != nil {
			path := fmt.Sprintf("%s.%d.%s.p3dump", base, i, r.Kind)
			writeDump(path, r.Dump)
			fmt.Printf("failure dump written to %s (render with p3dump)\n", path)
		}
	}
	writeDump(out, m.TakeDump("end of run"))
	fmt.Printf("flight recorder dump written to %s (render with p3dump)\n", out)
}

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 4, 5, 6, 7 or all")
	series := flag.String("series", "", "single curve: put, get, mpich1, mpich2")
	pattern := flag.String("pattern", "pingpong", "pingpong, stream or bidir")
	maxBytes := flag.Int("max", 8<<20, "largest message size in bytes")
	accel := flag.Bool("accel", false, "use accelerated-mode Portals processing")
	checks := flag.Bool("checks", false, "print paper-vs-measured checks (with -fig)")
	traceOut := flag.String("trace", "", "write a chrome://tracing timeline of the run (with -series)")
	stats := flag.Bool("stats", false, "print machine counters after the run (with -series)")
	telemetryOut := flag.String("telemetry", "", "write telemetry after the run: JSON, or Prometheus text with a .prom suffix (with -series)")
	sample := flag.Int("sample", 1000, "RAS sampler period in simulated microseconds, 0 to disable (with -telemetry)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations (A1-A6) and print checks")
	faults := flag.String("faults", "", "seeded fault injection: kind:frame:prob[:delay] rules, comma-separated (kinds drop,dup,delay,reorder; frames any,data,fcack,fcnack)")
	faultSeed := flag.Int64("faultseed", 0, "fault plane PRNG seed; 0 uses the built-in default (with -faults)")
	schedule := flag.String("schedule", "", "declarative timed-fault schedule: linkdown:NODE:DIR:AT:DUR, stall:NODE:AT:DUR, restart:NODE:AT:DUR, burst:KIND:FRAME:PROB:AT:DUR[:DELAY], corrupt:NODE:AT, comma-separated; works at any -shards count (combine with -gbn to recover losses)")
	gbn := flag.Bool("gbn", false, "enable the go-back-n loss/exhaustion recovery protocol (with -series)")
	flightrecOn := flag.Bool("flightrec", false, "enable the per-node flight recorder and write an end-of-run dump (with -series)")
	flightrecEvents := flag.Int("flightrec-events", 0, "flight recorder ring capacity per node, 0 for the default")
	dumpOnStall := flag.Int("dump-on-stall", 0, "stall detection window in simulated microseconds; a stalled flow dumps the recorder (with -flightrec)")
	dumpOut := flag.String("dumpout", "netpipe.p3dump", "flight recorder dump file (with -flightrec; render with p3dump)")
	torus := flag.Bool("torus", false, "run the machine-scale torus halo exchange instead of a netpipe curve")
	dim := flag.Int("dim", 8, "torus dimension: dim^3 nodes (with -torus)")
	shards := flag.Int("shards", 1, "event lanes for the sharded parallel kernel (with -torus)")
	seq := flag.Bool("seq", false, "force the sequential reference kernel, shards=1 (with -torus)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a host heap profile at exit to this file (go tool pprof)")
	flag.Parse()

	p := model.Defaults()
	rules, err := model.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Faults = rules
	p.FaultSeed = *faultSeed
	// Flag validation happens here, before any machine exists, so a bad
	// combination is a clear exit-2 diagnostic rather than a panic deep in
	// construction (machine.seqOnly or a schedule-validation panic).
	if *seq && *shards > 1 {
		fmt.Fprintf(os.Stderr, "netpipe: conflicting flags: -seq forces the sequential reference kernel; drop -seq or -shards %d\n", *shards)
		os.Exit(2)
	}
	if p.Schedule, err = model.ParseSchedule(*schedule); err != nil {
		fmt.Fprintf(os.Stderr, "netpipe: -schedule: %v\n", err)
		os.Exit(2)
	}
	if len(p.Schedule) > 0 {
		if *fig != "" || *ablations {
			fmt.Fprintln(os.Stderr, "netpipe: -schedule applies to a single run; use it with -series or -torus, not -fig/-ablations")
			os.Exit(2)
		}
		// Validate against the topology the run will actually build: the
		// dim^3 torus, or the two-node netpipe pair.
		tp, err := scheduleTopology(*torus, *dim)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netpipe: ", err)
			os.Exit(2)
		}
		if err := p.Schedule.Validate(tp); err != nil {
			fmt.Fprintf(os.Stderr, "netpipe: -schedule: %v\n", err)
			os.Exit(2)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case *ablations:
		runAblations(p)
	case *torus:
		n := *shards
		if *seq {
			n = 1
		}
		runTorus(p, *dim, n, *gbn, *stats, *telemetryOut, *sample)
	case *fig != "":
		runFigures(p, *fig, *checks)
	case *series != "":
		fr := frOpts{on: *flightrecOn || *dumpOnStall > 0, events: *flightrecEvents,
			stallUs: *dumpOnStall, out: *dumpOut}
		runSeries(p, *series, *pattern, *maxBytes, *accel, *gbn, *traceOut, *stats, *telemetryOut, *sample, fr)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("cpu profile written to %s (go tool pprof)\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("heap profile written to %s (go tool pprof)\n", *memprofile)
	}
}

// runTorus drives the machine-scale halo exchange on the sharded kernel.
// With telemetry on, the RAS sampler runs too (lane-local, merged at
// snapshot time) so the export carries the per-link contention series, and
// the per-hop-count latency-under-load summary prints after the run.
func runTorus(p model.Params, dim, shards int, gbn, stats bool, telemetryOut string, sampleUs int) {
	cfg := experiments.DefaultTorusConfig()
	cfg.Dim = dim
	cfg.Shards = shards
	cfg.GoBackN = gbn
	cfg.Faults = p.Faults
	cfg.FaultSeed = p.FaultSeed
	cfg.Schedule = p.Schedule
	cfg.Telemetry = telemetryOut != ""
	if cfg.Telemetry && sampleUs > 0 {
		cfg.SamplePeriod = sim.Time(sampleUs) * sim.Microsecond
	}
	r := experiments.TorusHalo(cfg)
	fmt.Printf("# torus halo: %d nodes (%dx%dx%d, radius %d), %d KB faces, %d steps, shards=%d\n",
		r.Nodes, dim, dim, dim, cfg.Radius, cfg.Bytes/1024, cfg.Steps, r.Shards)
	fmt.Printf("finished at %.1f us simulated, %d kernel windows\n",
		float64(r.FinishPs)/1e6, r.Windows)
	if stats {
		fmt.Println()
		fmt.Print(r.StatsText)
	}
	if r.FaultsLine != "" {
		fmt.Printf("fault plane: %s\n", r.FaultsLine)
	}
	if telemetryOut != "" {
		if err := os.WriteFile(telemetryOut, r.TelemetryJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		renderTorusLoad(r.TelemetryJSON)
		fmt.Printf("telemetry written to %s (render with p3stat)\n", telemetryOut)
	}
	for _, e := range r.Errors {
		fmt.Fprintln(os.Stderr, "ERROR: "+e)
	}
	if len(r.Errors) > 0 {
		os.Exit(1)
	}
}

// renderTorusLoad prints the latency-under-load summary from the run's
// telemetry export: per routing distance, delivered messages with their
// end-to-end latency next to the link-level head-of-line blocking their
// traversals saw.
func renderTorusLoad(telemetryJSON []byte) {
	e, err := telemetry.ReadJSON(bytes.NewReader(telemetryJSON))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	type hopRow struct {
		msgs, traversals uint64
		e2eMean, e2eP99  float64
		holMean, holP99  float64
	}
	rows := make(map[int]*hopRow)
	hopOf := func(labels string) int {
		const key = `hops="`
		i := strings.Index(labels, key)
		if i < 0 {
			return -1
		}
		rest := labels[i+len(key):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return -1
		}
		n := 0
		for _, c := range rest[:j] {
			if c < '0' || c > '9' {
				return -1
			}
			n = n*10 + int(c-'0')
		}
		return n
	}
	row := func(labels string) *hopRow {
		h := hopOf(labels)
		if h < 0 {
			return nil
		}
		if rows[h] == nil {
			rows[h] = &hopRow{}
		}
		return rows[h]
	}
	mean := func(m telemetry.ExportMetric) float64 {
		if m.Count == 0 {
			return 0
		}
		return float64(m.Sum) / float64(m.Count)
	}
	for _, m := range e.Metrics {
		switch m.Name {
		case "portals_msg_e2e_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.msgs, r.e2eMean, r.e2eP99 = m.Count, mean(m), float64(m.P99)
			}
		case "fabric_link_hol_wait_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.traversals, r.holMean, r.holP99 = m.Count, mean(m), float64(m.P99)
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	hops := make([]int, 0, len(rows))
	for h := range rows {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	fmt.Printf("\nlatency under load by hop count:\n")
	fmt.Printf("  %4s %8s %12s %12s %12s %12s %12s\n",
		"hops", "msgs", "e2e-mean", "e2e-p99", "traversals", "hol-mean", "hol-p99")
	for _, h := range hops {
		r := rows[h]
		fmt.Printf("  %4d %8d %10.3fus %10.3fus %12d %10.3fus %10.3fus\n",
			h, r.msgs, r.e2eMean/1e6, r.e2eP99/1e6, r.traversals, r.holMean/1e6, r.holP99/1e6)
	}
}

// runAblations reproduces the A1-A5 ablation studies of DESIGN.md.
func runAblations(p model.Params) {
	fmt.Println("# A1: generic vs accelerated mode (paper §3.3)")
	experiments.RenderChecks(os.Stdout, experiments.AblationAccelerated(p).Checks())
	fmt.Println("\n# A2: resource exhaustion, panic vs go-back-n (paper §4.3)")
	gbn := experiments.AblationGoBackN(p, 4, 30, 2048)
	fmt.Printf("  %v\n  %v\n", gbn[0], gbn[1])
	experiments.RenderChecks(os.Stdout, experiments.GbnChecks(gbn))
	fmt.Println("\n# A6: incast over a lossy fabric, panic vs go-back-n (DESIGN.md §9)")
	lossy := experiments.AblationLossyIncast(p, 4, 30, 2048, 0xfa017)
	fmt.Printf("  %v\n  %v\n", lossy.Arms[0], lossy.Arms[1])
	experiments.RenderChecks(os.Stdout, experiments.LossyChecks(lossy))
	fmt.Println("\n# A3: inline payload optimization removed (paper §6)")
	experiments.RenderChecks(os.Stdout, experiments.AblationInline(p).Checks())
	fmt.Println("\n# A4: interrupt coalescing removed (paper §4.1)")
	experiments.RenderChecks(os.Stdout, experiments.AblationCoalescing(p).Checks())
	fmt.Println("\n# A5: RX FIFO shrunk to 2 KB")
	experiments.RenderChecks(os.Stdout, experiments.AblationRxFIFO(p).Checks())
	fmt.Println("\n# model robustness")
	experiments.RenderChecks(os.Stdout, experiments.ChunkRobustness(p))
}

func runFigures(p model.Params, which string, checks bool) {
	var f4, f5, f6, f7 experiments.Figure
	show := func(f experiments.Figure) { f.Render(os.Stdout); fmt.Println() }
	switch which {
	case "4":
		f4 = experiments.Figure4(p)
		show(f4)
		f4.RenderPercentiles(os.Stdout)
		if checks {
			experiments.RenderChecks(os.Stdout, experiments.LatencyChecks(f4))
			showBreakdown(p)
		}
	case "5", "6", "7":
		var f experiments.Figure
		switch which {
		case "5":
			f = experiments.Figure5(p)
		case "6":
			f = experiments.Figure6(p)
		case "7":
			f = experiments.Figure7(p)
		}
		show(f)
	case "all":
		f4, f5, f6, f7 = experiments.Figure4(p), experiments.Figure5(p), experiments.Figure6(p), experiments.Figure7(p)
		for _, f := range []experiments.Figure{f4, f5, f6, f7} {
			show(f)
		}
		f4.RenderPercentiles(os.Stdout)
		if checks {
			experiments.RenderChecks(os.Stdout, experiments.LatencyChecks(f4))
			experiments.RenderChecks(os.Stdout, experiments.BandwidthChecks(f5, f6, f7))
			showBreakdown(p)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", which)
		os.Exit(2)
	}
}

// showBreakdown runs the telemetry-enabled attribution sweep and prints
// the paper's latency decomposition with its checks.
func showBreakdown(p model.Params) {
	fmt.Println()
	_, bd := experiments.TelemetryBreakdown(p)
	bd.Render(os.Stdout)
	experiments.RenderChecks(os.Stdout, experiments.BreakdownChecks(bd))
}

// frOpts carries the flight-recorder flags into runSeries.
type frOpts struct {
	on      bool
	events  int // ring capacity per node, 0 for the default
	stallUs int // stall detection window in simulated microseconds, 0 off
	out     string
}

func runSeries(p model.Params, series, pattern string, maxBytes int, accel, gbn bool, traceOut string, stats bool, telemetryOut string, sampleUs int, fr frOpts) {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = maxBytes
	if accel {
		cfg.Mode = machine.Accelerated
	}
	var mach *machine.Machine
	var tracer *trace.Tracer
	if traceOut != "" || stats || telemetryOut != "" || gbn || fr.on || len(p.Faults) > 0 || len(p.Schedule) > 0 {
		cfg.Observe = func(m *machine.Machine) {
			mach = m
			if gbn {
				m.EnableGoBackN()
			}
			if fr.on {
				m.EnableFlightRecorder(fr.events)
				if fr.stallUs > 0 {
					m.StartStallDetector(sim.Time(fr.stallUs) * sim.Microsecond)
				}
			}
			if traceOut != "" {
				tracer = m.EnableTracing()
			}
			if telemetryOut != "" {
				m.EnableTelemetry()
				if sampleUs > 0 {
					m.StartSampler(sim.Time(sampleUs) * sim.Microsecond)
				}
			}
		}
	}
	var pat netpipe.Pattern
	switch pattern {
	case "pingpong":
		pat = netpipe.PingPong
	case "stream":
		pat = netpipe.Stream
	case "bidir":
		pat = netpipe.Bidir
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", pattern)
		os.Exit(2)
	}
	var r netpipe.Result
	switch series {
	case "put":
		r = netpipe.RunPortals(p, netpipe.OpPut, pat, cfg)
	case "get":
		r = netpipe.RunPortals(p, netpipe.OpGet, pat, cfg)
	case "mpich1":
		r = netpipe.RunMPI(p, mpi.MPICH1, pat, cfg)
	case "mpich2":
		r = netpipe.RunMPI(p, mpi.MPICH2, pat, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown series %q\n", series)
		os.Exit(2)
	}
	fmt.Printf("# %s %s (mode: %v)\n", r.Series, pat, cfg.Mode)
	for _, pt := range r.Points {
		fmt.Println(pt)
	}
	if stats && mach != nil {
		fmt.Println()
		fmt.Print(mach.Stats())
	}
	if (len(p.Faults) > 0 || len(p.Schedule) > 0) && mach != nil {
		fmt.Printf("\nfault plane: %v\n", mach.Faults().Snapshot())
	}
	if fr.on && mach != nil {
		writeDumps(mach, fr.out)
	}
	if telemetryOut != "" && mach != nil {
		if err := writeTelemetry(mach, telemetryOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if bd, ok := mach.Telemetry().Snapshot(mach.S.Now()).Breakdown(); ok {
			fmt.Println()
			bd.Render(os.Stdout)
		}
		fmt.Printf("telemetry written to %s (render with p3stat)\n", telemetryOut)
	}
	if tracer != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tracer.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events written to %s (open in chrome://tracing or Perfetto)\n", tracer.Len(), traceOut)
	}
	// A scheduled-fault run that ends with open failure reports (ledger
	// imbalance, stall, panic) exits nonzero so scripted repros can gate on
	// it; writeDumps already printed the reports when the recorder is on.
	if len(p.Schedule) > 0 && mach != nil && len(mach.Reports()) > 0 {
		if !fr.on {
			for _, r := range mach.Reports() {
				fmt.Fprintf(os.Stderr, "failure: %v\n", r)
			}
		}
		os.Exit(1)
	}
}
