// Command xt3topo inspects the simulated machine's interconnect: node
// coordinates, dimension-ordered routes, hop counts and the wire-latency
// estimates behind the paper's 2 µs nearest-neighbor / 5 µs worst-case
// requirements (§1).
//
//	xt3topo -info                      # Red Storm shape and diameter
//	xt3topo -route 0,4711              # path between two nodes
//	xt3topo -dims 8x8x8 -wrap xyz -route 0,511
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

func main() {
	dims := flag.String("dims", "", "topology as NxNxN (default: Red Storm 27x16x24)")
	wrap := flag.String("wrap", "z", "torus axes, subset of xyz")
	info := flag.Bool("info", false, "print machine shape summary")
	route := flag.String("route", "", "print the route between two nodes: src,dst")
	flag.Parse()

	tp := buildTopo(*dims, *wrap)
	p := model.Defaults()

	if *info || *route == "" {
		nx, ny, nz := tp.Dims()
		fmt.Printf("topology: %d x %d x %d = %d nodes\n", nx, ny, nz, tp.Nodes())
		fmt.Printf("torus axes:")
		for _, a := range []topo.Axis{topo.X, topo.Y, topo.Z} {
			if tp.Wrapped(a) {
				fmt.Printf(" %v", a)
			}
		}
		fmt.Println()
		d := tp.Diameter()
		fmt.Printf("diameter: %d hops\n", d)
		fmt.Printf("per-hop latency: %v\n", p.HopLatency)
		near := wireLatency(&p, 1)
		far := wireLatency(&p, d)
		fmt.Printf("wire latency (64B packet): nearest neighbor %v, farthest pair %v\n", near, far)
		fmt.Printf("(paper §1 requirements: 2 us nearest-neighbor MPI, 5 us farthest)\n")
	}

	if *route != "" {
		parts := strings.Split(*route, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "route wants src,dst")
			os.Exit(2)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		dst, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || !tp.Valid(topo.NodeID(src)) || !tp.Valid(topo.NodeID(dst)) {
			fmt.Fprintln(os.Stderr, "bad node ids")
			os.Exit(2)
		}
		s, d := topo.NodeID(src), topo.NodeID(dst)
		fmt.Printf("route %d%v -> %d%v: %d hops\n", s, tp.Coord(s), d, tp.Coord(d), tp.Hops(s, d))
		path := tp.Route(s, d)
		var dirs []string
		for _, h := range path {
			dirs = append(dirs, h.String())
		}
		fmt.Printf("  links: %s\n", strings.Join(dirs, " "))
		fmt.Printf("  wire latency (64B packet): %v\n", wireLatency(&p, len(path)))
	}
}

// wireLatency is the pure network time for a header packet over h hops.
func wireLatency(p *model.Params, hops int) sim.Time {
	return 2*p.InjectLatency + sim.Time(hops)*(p.HopLatency+sim.BytesAt(64, p.LinkBps))
}

func buildTopo(dims, wrap string) *topo.Topology {
	if dims == "" {
		return topo.RedStorm()
	}
	parts := strings.Split(strings.ToLower(dims), "x")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "dims wants NxNxN")
		os.Exit(2)
	}
	var n [3]int
	for i, s := range parts {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad dimension %q\n", s)
			os.Exit(2)
		}
		n[i] = v
	}
	w := strings.ToLower(wrap)
	tp, err := topo.New(n[0], n[1], n[2],
		strings.Contains(w, "x"), strings.Contains(w, "y"), strings.Contains(w, "z"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return tp
}
